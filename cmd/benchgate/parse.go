package main

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// refNsOp extracts the recorded ns/op for one benchmark entry under the
// "after" section of a BENCH_*.json record.
func refNsOp(raw []byte, key string) (float64, error) {
	var doc struct {
		After map[string]struct {
			NsOp float64 `json:"ns_op"`
		} `json:"after"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, err
	}
	e, ok := doc.After[key]
	if !ok || e.NsOp <= 0 {
		return 0, fmt.Errorf("no usable %q entry under \"after\"", key)
	}
	return e.NsOp, nil
}

// minNsPerOp parses `go test -bench` output and returns the smallest
// ns/op over all result lines whose benchmark name starts with prefix,
// plus how many lines matched. Benchmark result lines have the form
//
//	BenchmarkRun          	       5	  26053117 ns/op	...
//
// optionally with a -N GOMAXPROCS suffix on the name.
func minNsPerOp(out, prefix string) (min float64, n int, err error) {
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], prefix) {
			continue
		}
		if fields[3] != "ns/op" {
			continue
		}
		v, perr := strconv.ParseFloat(fields[2], 64)
		if perr != nil {
			return 0, 0, fmt.Errorf("bad ns/op in %q: %v", line, perr)
		}
		if n == 0 || v < min {
			min = v
		}
		n++
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("no benchmark result lines matching %q", prefix)
	}
	return min, n, nil
}
