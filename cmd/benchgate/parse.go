package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// refEntry is one recorded benchmark baseline from a BENCH_*.json record.
// AllocsOp is a pointer so a record written before allocation tracking
// (no allocs_op field) is distinguishable from a genuinely zero-alloc
// benchmark.
type refEntry struct {
	NsOp     float64  `json:"ns_op"`
	AllocsOp *float64 `json:"allocs_op"`
}

// refBench extracts the recorded baseline for one benchmark entry under
// the "after" section of a BENCH_*.json record. A missing key lists the
// available entries so a typo fails loudly instead of vacuously.
func refBench(raw []byte, key string) (refEntry, error) {
	var doc struct {
		After map[string]refEntry `json:"after"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return refEntry{}, fmt.Errorf("parsing reference record: %v", err)
	}
	if len(doc.After) == 0 {
		return refEntry{}, fmt.Errorf("reference record has no \"after\" section — nothing to gate against")
	}
	e, ok := doc.After[key]
	if !ok {
		keys := make([]string, 0, len(doc.After))
		for k := range doc.After {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return refEntry{}, fmt.Errorf("no %q entry under \"after\"; available: %s",
			key, strings.Join(keys, ", "))
	}
	if e.NsOp <= 0 {
		return refEntry{}, fmt.Errorf("entry %q has no usable ns_op", key)
	}
	return e, nil
}

// minUnit parses `go test -bench` output and returns the smallest value
// of the given unit column (e.g. "ns/op", "allocs/op") over all result
// lines whose benchmark name starts with prefix, plus how many lines
// carried that column. Benchmark result lines have the form
//
//	BenchmarkRun          	       5	  26053117 ns/op	  255877 B/op	  11045 allocs/op
//
// optionally with a -N GOMAXPROCS suffix on the name.
func minUnit(out, prefix, unit string) (min float64, n int, err error) {
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], prefix) {
			continue
		}
		for i := 3; i < len(fields); i += 2 {
			if fields[i] != unit {
				continue
			}
			v, perr := strconv.ParseFloat(fields[i-1], 64)
			if perr != nil {
				return 0, 0, fmt.Errorf("bad %s in %q: %v", unit, line, perr)
			}
			if n == 0 || v < min {
				min = v
			}
			n++
			break
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("no benchmark result lines matching %q with a %s column", prefix, unit)
	}
	return min, n, nil
}
