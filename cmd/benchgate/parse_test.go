package main

import "testing"

const sampleOutput = `goos: linux
goarch: amd64
pkg: hybridperf/internal/exec
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRun        	       5	  26053117 ns/op	  255877 B/op	   11045 allocs/op
BenchmarkRun        	       5	  27110041 ns/op	  255881 B/op	   11046 allocs/op
BenchmarkRun-4      	       5	  25910233 ns/op	  255870 B/op	   11044 allocs/op
PASS
ok  	hybridperf/internal/exec	1.234s
`

func TestMinNsPerOp(t *testing.T) {
	min, n, err := minNsPerOp(sampleOutput, "Benchmark")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("matched %d lines, want 3", n)
	}
	if min != 25910233 {
		t.Fatalf("min = %g, want 25910233", min)
	}
}

func TestMinNsPerOpNoMatches(t *testing.T) {
	if _, _, err := minNsPerOp("PASS\nok\n", "Benchmark"); err == nil {
		t.Fatal("expected error for output without benchmark lines")
	}
}

func TestMinNsPerOpMalformed(t *testing.T) {
	if _, _, err := minNsPerOp("BenchmarkRun 5 abc ns/op\n", "Benchmark"); err == nil {
		t.Fatal("expected error for malformed ns/op value")
	}
}

func TestRefNsOp(t *testing.T) {
	raw := []byte(`{"after": {"exec_BenchmarkRun_SP_classS_8x8": {"ns_op": 26053117, "B_op": 255877}}}`)
	got, err := refNsOp(raw, "exec_BenchmarkRun_SP_classS_8x8")
	if err != nil {
		t.Fatal(err)
	}
	if got != 26053117 {
		t.Fatalf("ref = %g", got)
	}
	if _, err := refNsOp(raw, "missing"); err == nil {
		t.Fatal("expected error for missing key")
	}
	if _, err := refNsOp([]byte("not json"), "k"); err == nil {
		t.Fatal("expected error for invalid JSON")
	}
}
