package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: hybridperf/internal/exec
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRun        	       5	  26053117 ns/op	  255877 B/op	   11045 allocs/op
BenchmarkRun        	       5	  27110041 ns/op	  255881 B/op	   11046 allocs/op
BenchmarkRun-4      	       5	  25910233 ns/op	  255870 B/op	   11044 allocs/op
PASS
ok  	hybridperf/internal/exec	1.234s
`

func TestMinUnitNsOp(t *testing.T) {
	min, n, err := minUnit(sampleOutput, "Benchmark", "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("matched %d lines, want 3", n)
	}
	if min != 25910233 {
		t.Fatalf("min = %g, want 25910233", min)
	}
}

func TestMinUnitAllocsOp(t *testing.T) {
	min, n, err := minUnit(sampleOutput, "Benchmark", "allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("matched %d lines, want 3", n)
	}
	if min != 11044 {
		t.Fatalf("min = %g, want 11044", min)
	}
}

func TestMinUnitNoBenchmem(t *testing.T) {
	// Output without -benchmem has no allocs/op column: the allocation
	// gate must error, not silently pass.
	out := "BenchmarkRun 5 26053117 ns/op\nPASS\n"
	if _, _, err := minUnit(out, "Benchmark", "allocs/op"); err == nil {
		t.Fatal("expected error when allocs/op column is absent")
	}
	if _, _, err := minUnit(out, "Benchmark", "ns/op"); err != nil {
		t.Fatalf("ns/op should still parse: %v", err)
	}
}

func TestMinUnitNoMatches(t *testing.T) {
	if _, _, err := minUnit("PASS\nok\n", "Benchmark", "ns/op"); err == nil {
		t.Fatal("expected error for output without benchmark lines")
	}
}

func TestMinUnitMalformed(t *testing.T) {
	if _, _, err := minUnit("BenchmarkRun 5 abc ns/op\n", "Benchmark", "ns/op"); err == nil {
		t.Fatal("expected error for malformed ns/op value")
	}
}

func TestRefBench(t *testing.T) {
	raw := []byte(`{"after": {"exec_BenchmarkRun_SP_classS_8x8": {"ns_op": 26053117, "B_op": 255877, "allocs_op": 11045}}}`)
	e, err := refBench(raw, "exec_BenchmarkRun_SP_classS_8x8")
	if err != nil {
		t.Fatal(err)
	}
	if e.NsOp != 26053117 {
		t.Fatalf("ns_op = %g", e.NsOp)
	}
	if e.AllocsOp == nil || *e.AllocsOp != 11045 {
		t.Fatalf("allocs_op = %v, want 11045", e.AllocsOp)
	}
	if _, err := refBench([]byte("not json"), "k"); err == nil {
		t.Fatal("expected error for invalid JSON")
	}
	if _, err := refBench([]byte(`{"before": {}}`), "k"); err == nil {
		t.Fatal("expected error for a record without an \"after\" section")
	}
}

func TestRefBenchMissingKeyListsAvailable(t *testing.T) {
	raw := []byte(`{"after": {"a_bench": {"ns_op": 1}, "b_bench": {"ns_op": 2}}}`)
	_, err := refBench(raw, "missing")
	if err == nil {
		t.Fatal("expected error for missing key")
	}
	if !strings.Contains(err.Error(), "a_bench") || !strings.Contains(err.Error(), "b_bench") {
		t.Fatalf("error should list available keys, got: %v", err)
	}
}

func TestRefBenchNoAllocsRecorded(t *testing.T) {
	// Pre-benchmem baselines have no allocs_op field; the entry parses
	// (time gate still works) but AllocsOp stays nil so main can fail
	// the allocation gate with a clear message.
	raw := []byte(`{"after": {"old": {"ns_op": 100}}}`)
	e, err := refBench(raw, "old")
	if err != nil {
		t.Fatal(err)
	}
	if e.AllocsOp != nil {
		t.Fatalf("allocs_op = %v, want nil for a record without the field", *e.AllocsOp)
	}
}

func TestRefBenchZeroAllocs(t *testing.T) {
	// allocs_op: 0 is a real zero-alloc baseline, distinct from absent.
	raw := []byte(`{"after": {"des": {"ns_op": 5.58, "allocs_op": 0}}}`)
	e, err := refBench(raw, "des")
	if err != nil {
		t.Fatal(err)
	}
	if e.AllocsOp == nil || *e.AllocsOp != 0 {
		t.Fatalf("allocs_op = %v, want explicit 0", e.AllocsOp)
	}
}
