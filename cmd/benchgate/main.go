// Command benchgate guards the simulation engine's performance envelope in
// CI: it runs the reference benchmark (exec.BenchmarkRun — one class-S SP
// measurement on 8×8 cores) and fails if the best observed ns/op regresses
// more than an allowed factor over the recorded reference in BENCH_2.json.
// The gate is deliberately loose (default 25 %) so shared-runner noise
// passes but an accidental hot-path regression — say, instrumentation that
// stopped being free — does not.
//
// Usage (CI):
//
//	go run ./cmd/benchgate -ref BENCH_2.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	var (
		ref       = flag.String("ref", "BENCH_2.json", "reference benchmark record")
		key       = flag.String("key", "exec_BenchmarkRun_SP_classS_8x8", "reference entry under \"after\"")
		bench     = flag.String("bench", "BenchmarkRun$", "benchmark pattern to run")
		pkg       = flag.String("pkg", "./internal/exec", "package holding the benchmark")
		factor    = flag.Float64("factor", 1.25, "allowed ns/op regression factor over the reference")
		count     = flag.Int("count", 3, "benchmark repetitions (best run is compared)")
		benchtime = flag.String("benchtime", "5x", "go test -benchtime value")
	)
	flag.Parse()

	raw, err := os.ReadFile(*ref)
	if err != nil {
		log.Fatal(err)
	}
	refNs, err := refNsOp(raw, *key)
	if err != nil {
		log.Fatalf("%s: %v", *ref, err)
	}

	args := []string{"test", "-run=NONE", "-bench", *bench,
		"-benchtime", *benchtime, "-count", fmt.Sprint(*count), *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		log.Fatalf("go %v: %v", args, err)
	}
	best, runs, err := minNsPerOp(string(out), "Benchmark")
	if err != nil {
		log.Fatalf("parsing benchmark output: %v\n%s", err, out)
	}

	limit := refNs * *factor
	fmt.Printf("reference %.0f ns/op, best of %d runs %.0f ns/op, limit %.0f ns/op (%.2fx)\n",
		refNs, runs, best, limit, best/refNs)
	if best > limit {
		log.Fatalf("REGRESSION: %.0f ns/op exceeds %.0f ns/op (%.0f × %.2f)",
			best, limit, refNs, *factor)
	}
	fmt.Println("ok")
}
