// Command benchgate guards the simulation engine's performance envelope in
// CI: it runs the reference benchmark (exec.BenchmarkRun — one class-S SP
// measurement on 8×8 cores) with -benchmem and fails if the best observed
// ns/op or allocs/op regresses more than an allowed factor over the
// recorded reference in BENCH_2.json. The time gate is deliberately loose
// (default 25 %) so shared-runner noise passes; the allocation gate is
// tight (default 10 %) because allocation counts are deterministic — a
// breach there means instrumentation or a refactor started allocating on
// the hot path. A missing reference file, an unknown reference key or an
// empty benchmark run all fail loudly instead of passing vacuously.
//
// Usage (CI):
//
//	go run ./cmd/benchgate -ref BENCH_2.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	var (
		ref         = flag.String("ref", "BENCH_2.json", "reference benchmark record")
		key         = flag.String("key", "exec_BenchmarkRun_SP_classS_8x8", "reference entry under \"after\"")
		bench       = flag.String("bench", "BenchmarkRun$", "benchmark pattern to run")
		pkg         = flag.String("pkg", "./internal/exec", "package holding the benchmark")
		factor      = flag.Float64("factor", 1.25, "allowed ns/op regression factor over the reference")
		allocFactor = flag.Float64("allocfactor", 1.10, "allowed allocs/op regression factor (0 = skip the allocation gate)")
		count       = flag.Int("count", 3, "benchmark repetitions (best run is compared)")
		benchtime   = flag.String("benchtime", "5x", "go test -benchtime value")
	)
	flag.Parse()

	raw, err := os.ReadFile(*ref)
	if err != nil {
		log.Fatalf("reference record unreadable (%v) — benchgate cannot gate without a baseline; "+
			"record one or point -ref at it", err)
	}
	refE, err := refBench(raw, *key)
	if err != nil {
		log.Fatalf("%s: %v", *ref, err)
	}

	args := []string{"test", "-run=NONE", "-bench", *bench, "-benchmem",
		"-benchtime", *benchtime, "-count", fmt.Sprint(*count), *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		log.Fatalf("go %v: %v", args, err)
	}
	bestNs, runs, err := minUnit(string(out), "Benchmark", "ns/op")
	if err != nil {
		log.Fatalf("parsing benchmark output: %v\n%s", err, out)
	}

	nsLimit := refE.NsOp * *factor
	fmt.Printf("time   reference %.0f ns/op, best of %d runs %.0f ns/op, limit %.0f ns/op (%.2fx)\n",
		refE.NsOp, runs, bestNs, nsLimit, bestNs/refE.NsOp)
	failed := false
	if bestNs > nsLimit {
		log.Printf("TIME REGRESSION: %.0f ns/op exceeds %.0f ns/op (%.0f × %.2f)",
			bestNs, nsLimit, refE.NsOp, *factor)
		failed = true
	}

	if *allocFactor > 0 {
		if refE.AllocsOp == nil {
			log.Fatalf("%s: entry %q records no allocs_op — re-record the baseline with -benchmem "+
				"or pass -allocfactor 0 to skip the allocation gate", *ref, *key)
		}
		bestAllocs, _, err := minUnit(string(out), "Benchmark", "allocs/op")
		if err != nil {
			log.Fatalf("parsing benchmark output: %v\n%s", err, out)
		}
		// A zero-alloc reference gates at zero: the benchmark must stay
		// allocation-free.
		allocLimit := *refE.AllocsOp * *allocFactor
		fmt.Printf("allocs reference %.0f allocs/op, best %.0f allocs/op, limit %.0f allocs/op\n",
			*refE.AllocsOp, bestAllocs, allocLimit)
		if bestAllocs > allocLimit {
			log.Printf("ALLOC REGRESSION: %.0f allocs/op exceeds %.0f allocs/op (%.0f × %.2f)",
				bestAllocs, allocLimit, *refE.AllocsOp, *allocFactor)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("ok")
}
