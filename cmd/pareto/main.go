// Command pareto explores a configuration space with the analytical model
// and prints the time-energy Pareto frontier, optionally answering the
// paper's two queries: minimum energy under a deadline and minimum time
// under an energy budget.
//
// Usage:
//
//	pareto -system xeon -program SP -class A -maxnodes 256 -pow2
//	pareto -system arm -program CP -class A -maxnodes 20 -deadline 2000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hybridperf"
	"hybridperf/internal/pareto"
	"hybridperf/internal/textplot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pareto: ")
	var (
		system   = flag.String("system", "xeon", "cluster profile: xeon or arm")
		program  = flag.String("program", "SP", "program: LU, SP, BT, CP or LB")
		class    = flag.String("class", "A", "input class: T, S, A or C")
		maxNodes = flag.Int("maxnodes", 0, "largest node count (0 = testbed size)")
		pow2     = flag.Bool("pow2", false, "powers-of-two node counts (Figure 8 style)")
		deadline = flag.Float64("deadline", 0, "execution-time deadline [s] (0 = none)")
		budget   = flag.Float64("budget", 0, "energy budget [J] (0 = none)")
		seed     = flag.Int64("seed", 42, "characterisation seed")
		workers  = flag.Int("workers", 0, "parallel characterisation/sweep workers (0 = NumCPU)")
		showMx   = flag.Bool("metrics", false, "report aggregate engine counters of the characterisation sweep")
	)
	flag.Parse()

	sys, err := hybridperf.SystemByName(*system)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := hybridperf.ProgramByName(*program)
	if err != nil {
		log.Fatal(err)
	}
	model, err := hybridperf.Characterize(sys, prog, &hybridperf.CharacterizeOptions{
		Seed: *seed, Workers: *workers, Metrics: *showMx,
	})
	if err != nil {
		log.Fatal(err)
	}

	max := *maxNodes
	if max == 0 {
		max = sys.MaxNodes
	}
	var nodes []int
	if *pow2 {
		nodes = pareto.PowersOfTwo(max)
	} else {
		nodes = pareto.Range(1, max)
	}
	cfgs := model.Space(nodes)
	points, front, err := model.Explore(cfgs, hybridperf.Class(*class))
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	fmt.Fprintf(w, "%s on %s, class %s: %d configurations, %d Pareto-optimal\n\n",
		prog.Name, sys.Name, *class, len(points), len(front))
	var rows [][]string
	for _, p := range front {
		rows = append(rows, []string{
			p.Cfg.String(),
			fmt.Sprintf("%.1f", p.Pred.T),
			fmt.Sprintf("%.2f", p.Pred.E/1e3),
			fmt.Sprintf("%.2f", p.Pred.UCR),
		})
	}
	fmt.Fprintln(w, textplot.Table([]string{"(n,c,f[GHz])", "Time[s]", "Energy[kJ]", "UCR"}, rows))

	if *deadline > 0 {
		if p, ok := pareto.MinEnergyWithinDeadline(points, *deadline); ok {
			fmt.Fprintf(w, "min energy within deadline %.1f s: %v  T=%.1f s  E=%.2f kJ  UCR=%.2f\n",
				*deadline, p.Cfg, p.Pred.T, p.Pred.E/1e3, p.Pred.UCR)
		} else {
			fmt.Fprintf(w, "no configuration meets deadline %.1f s\n", *deadline)
		}
	}
	if *budget > 0 {
		if p, ok := pareto.MinTimeWithinBudget(points, *budget); ok {
			fmt.Fprintf(w, "min time within budget %.0f J: %v  T=%.1f s  E=%.2f kJ  UCR=%.2f\n",
				*budget, p.Cfg, p.Pred.T, p.Pred.E/1e3, p.Pred.UCR)
		} else {
			fmt.Fprintf(w, "no configuration fits budget %.0f J\n", *budget)
		}
	}
	if *showMx {
		sum := model.Characterization()
		fmt.Fprintf(w, "\nengine metrics over %d characterisation runs\n%s", sum.MetricsRuns, sum.Metrics)
	}
}
