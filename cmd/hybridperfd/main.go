// Command hybridperfd serves the analytical model as a long-running,
// observable HTTP service: POST /v1/predict for one (system, program,
// class, n, c, f) point, POST /v1/batch for many tuples vectorised
// through the sweep engine (one model resolution per (system, program)
// group), POST /v1/sweep for a configuration-space sweep returning the
// time-energy Pareto frontier, POST /v1/advise for the online DVFS
// advisory plane (the governor policy suite simulated from the static
// Pareto point, each policy's frequency schedule and energy/makespan
// delta reported, the best within the -advise-slowdown tolerance
// recommended), GET /v1/systems for the available
// profiles (ETag/If-None-Match revalidation). Models are characterised
// lazily per (system, program) pair — with a fixed seed, so two daemons
// serve bit-identical predictions — and cached for the process lifetime.
//
// Sweep, batch and advise answers pass an LRU response cache keyed on
// the canonicalised request (-response-cache-size / -response-cache-ttl);
// identical concurrent requests collapse onto a single computation.
// These endpoints stream NDJSON instead of one JSON document when the
// client asks (Accept: application/x-ndjson or ?stream=1).
//
// Heavy work (characterisation campaigns, sweep/batch evaluations)
// passes a bounded admission gate (-max-campaigns): saturated requests
// are shed with 429 + Retry-After. Each request can carry a deadline
// (-request-timeout); a disconnected client or expired deadline cancels
// its in-flight simulations cooperatively.
//
// With -model-store the daemon persists every characterisation campaign
// as a versioned, checksummed snapshot and warm-loads matching snapshots
// at boot, so a restart serves its first prediction without re-running a
// single campaign — bit-identical to the cold path. With -peers/-self
// several daemons form a static cluster: each (system, program) model
// key has one owning replica on a consistent-hash ring and requests for
// remotely-owned keys are forwarded there (X-Hybridperf-Shard names the
// replica that answered; a request carrying X-Hybridperf-Forwarded is
// always served locally). Ownership is advisory — a forward that fails
// at the transport falls back to serving locally.
//
// Predict and sweep bodies accept an optional "engine" field selecting
// the simulation engine ("goroutine" or "sequential" — bit-identical
// results, the sequential engine is faster); -default-engine sets the
// server-wide default and the engine_* /metrics families are labelled
// per mode.
//
// Observability surface: GET /metrics (Prometheus text exposition of
// request counters/latency histograms plus the simulation engine's own
// counters), GET /healthz, GET /readyz, GET /debug/trace?duration=1s
// (Chrome-trace JSON of the server's recent spans) and /debug/pprof/.
// Every request logs one structured line (log/slog) with a request id,
// route, status, duration and model coordinates.
//
// Usage:
//
//	hybridperfd -addr :8080
//	hybridperfd -addr 127.0.0.1:8080 -preload xeon/SP,arm/CP -log json
//	hybridperfd -addr :8081 -model-store /var/lib/hybridperf/models \
//	    -self http://127.0.0.1:8081 -peers http://127.0.0.1:8081,http://127.0.0.1:8082
//	curl -d '{"system":"xeon","program":"SP","class":"A","nodes":4,"cores":8,"freq_ghz":1.8}' \
//	    localhost:8080/v1/predict
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hybridperf/internal/exec"
	"hybridperf/internal/modelstore"
	"hybridperf/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "characterisation/sweep workers (0 = GOMAXPROCS)")
		seed     = flag.Int64("seed", 42, "characterisation seed (fixed seed = reproducible predictions)")
		logFmt   = flag.String("log", "text", "request log format: text or json")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		preload  = flag.String("preload", "", "comma-separated system/program pairs to characterise before serving, e.g. xeon/SP,arm/CP")
		spanCap  = flag.Int("span-capacity", 0, "span flight-recorder capacity (0 = 4096)")
		maxCamp  = flag.Int("max-campaigns", 0, "max concurrent characterisation/sweep campaigns; excess requests get 429 (0 = 4)")
		reqTO    = flag.Duration("request-timeout", 0, "per-request deadline cancelling in-flight work, e.g. 30s (0 = none)")
		defEng   = flag.String("default-engine", "", "simulation engine for requests without an \"engine\" field: goroutine or sequential (default $HYBRIDPERF_ENGINE, then goroutine)")
		cacheSz  = flag.Int("response-cache-size", 512, "sweep/batch response cache entries; identical in-flight requests collapse onto one computation (0 = disabled)")
		cacheTTL = flag.Duration("response-cache-ttl", 5*time.Minute, "response cache entry lifetime (0 = entries never expire)")
		storeDir = flag.String("model-store", "", "directory for persistent characterisation snapshots; warm-loaded at boot, written after every campaign (empty = no persistence)")
		peers    = flag.String("peers", "", "comma-separated replica base URLs forming a static cluster, e.g. http://a:8080,http://b:8080 (empty = single instance)")
		self     = flag.String("self", "", "this replica's own base URL; must be one of -peers")
		traceSmp = flag.Float64("trace-sample", 0, "fraction of locally originated requests recording a span tree pullable via /debug/trace/{traceid} (0 = off; incoming traceparent headers always win)")
		advSlow  = flag.Float64("advise-slowdown", 0, "default /v1/advise makespan tolerance as a fraction in (0,1), e.g. 0.05 = 5% (0 = 0.05)")
	)
	flag.Parse()

	if err := exec.ValidateEngine(*defEng); err != nil {
		fmt.Fprintf(os.Stderr, "hybridperfd: bad -default-engine: %v\n", err)
		os.Exit(2)
	}
	if *advSlow < 0 || *advSlow >= 1 {
		fmt.Fprintf(os.Stderr, "hybridperfd: bad -advise-slowdown %g (want a fraction in (0,1))\n", *advSlow)
		os.Exit(2)
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "hybridperfd: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFmt {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	default:
		fmt.Fprintf(os.Stderr, "hybridperfd: bad -log %q (want text or json)\n", *logFmt)
		os.Exit(2)
	}
	logger := slog.New(handler)

	var store *modelstore.Store
	if *storeDir != "" {
		var err error
		if store, err = modelstore.Open(*storeDir); err != nil {
			logger.Error("opening model store", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
	}

	srv := telemetry.NewServer(telemetry.Config{
		Workers:           *workers,
		Seed:              *seed,
		Logger:            logger,
		SpanCapacity:      *spanCap,
		MaxCampaigns:      *maxCamp,
		RequestTimeout:    *reqTO,
		DefaultEngine:     *defEng,
		ResponseCache:     *cacheSz,
		ResponseCacheTTL:  *cacheTTL,
		TraceSample:       *traceSmp,
		ModelStore:        store,
		AdviseMaxSlowdown: *advSlow,
	})

	if (*peers == "") != (*self == "") {
		fmt.Fprintln(os.Stderr, "hybridperfd: -peers and -self must be set together")
		os.Exit(2)
	}
	if *peers != "" {
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			list = append(list, strings.TrimSpace(p))
		}
		if err := srv.SetCluster(strings.TrimSpace(*self), list); err != nil {
			fmt.Fprintf(os.Stderr, "hybridperfd: %v\n", err)
			os.Exit(2)
		}
	}

	// Warm requested models before declaring readiness, so a load balancer
	// never routes traffic into a cold characterisation stampede.
	if *preload != "" {
		for _, pair := range strings.Split(*preload, ",") {
			system, program, ok := strings.Cut(strings.TrimSpace(pair), "/")
			if !ok {
				logger.Error("bad -preload entry (want system/program)", "entry", pair)
				os.Exit(2)
			}
			if err := srv.Warm(system, program); err != nil {
				logger.Error("preload failed", "system", system, "program", program, "err", err)
				os.Exit(1)
			}
		}
	}
	srv.SetReady(true)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "workers", *workers, "seed", *seed, "engine", srv.DefaultEngine())

	select {
	case err := <-errc:
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown", "err", err)
		os.Exit(1)
	}
}
