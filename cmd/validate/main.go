// Command validate compares model predictions against direct simulation
// over the validation configuration grid, printing per-program mean and
// standard deviation of the time and energy errors — the repository's
// Table 2 — plus the predicted-vs-measured Useful Computation Ratio,
// where the measured side is derived from each run's recorded phase
// timeline (Eq. 13 evaluated on the simulation's own trace).
//
// Usage:
//
//	validate -system xeon -class A
//	validate -system arm -program CP -class S
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hybridperf/internal/exec"
	"hybridperf/internal/experiments"
	"hybridperf/internal/machine"
	"hybridperf/internal/metrics"
	"hybridperf/internal/stats"
	"hybridperf/internal/textplot"
	"hybridperf/internal/workload"

	"hybridperf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")
	var (
		system  = flag.String("system", "xeon", "cluster profile: xeon or arm")
		program = flag.String("program", "", "program (empty = all five)")
		class   = flag.String("class", "A", "input class for measured runs")
		seed    = flag.Int64("seed", 42, "seed")
		workers = flag.Int("workers", 0, "parallel simulations (0 = NumCPU)")
		full    = flag.Bool("full", false, "use the full Table 2 artifact (both systems, all programs)")
		showMx  = flag.Bool("metrics", false, "print aggregate engine counters over the measured runs")
	)
	flag.Parse()

	if *full {
		r := experiments.NewRunner(experiments.Config{Seed: *seed, Workers: *workers})
		a, err := r.Table2()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(a.Text)
		return
	}

	sys, err := machine.ByName(*system)
	if err != nil {
		log.Fatal(err)
	}
	var specs []*workload.Spec
	if *program == "" {
		specs = workload.Programs()
	} else {
		s, err := workload.ByName(*program)
		if err != nil {
			log.Fatal(err)
		}
		specs = []*workload.Spec{s}
	}

	var cfgs []machine.Config
	for _, n := range []int{1, 2, 4, 8} {
		for c := 1; c <= sys.CoresPerNode; c++ {
			for _, f := range sys.Frequencies {
				cfgs = append(cfgs, machine.Config{Nodes: n, Cores: c, Freq: f})
			}
		}
	}

	var rows [][]string
	var mxAgg metrics.EngineSnapshot
	mxRuns := 0
	for _, spec := range specs {
		model, err := hybridperf.Characterize(sys, spec, &hybridperf.CharacterizeOptions{Seed: *seed, Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		S, err := spec.Iterations(workload.Class(*class))
		if err != nil {
			log.Fatal(err)
		}
		var reqs []exec.Request
		for i, cfg := range cfgs {
			reqs = append(reqs, exec.Request{
				Prof: sys, Spec: spec, Class: workload.Class(*class), Cfg: cfg,
				Seed: *seed + 1e6 + int64(i),
				// The recorded timeline yields each run's measured UCR.
				Trace:   true,
				Metrics: *showMx,
			})
		}
		results, err := exec.Sweep(reqs, *workers)
		if err != nil {
			log.Fatal(err)
		}
		if *showMx {
			agg, n := exec.SweepMetrics(results)
			mxAgg.Add(agg)
			mxRuns += n
		}
		var predT, measT, predE, measE, predU, measU []float64
		for i, cfg := range cfgs {
			p, err := model.Core().Predict(cfg, S)
			if err != nil {
				log.Fatal(err)
			}
			predT = append(predT, p.T)
			measT = append(measT, results[i].Time)
			predE = append(predE, p.E)
			measE = append(measE, results[i].MeasuredEnergy)
			predU = append(predU, p.UCR)
			measU = append(measU, results[i].MeasuredUCR)
		}
		te := stats.SummarizeErrors(predT, measT)
		ee := stats.SummarizeErrors(predE, measE)
		rows = append(rows, []string{
			spec.Name,
			fmt.Sprintf("%d", len(cfgs)),
			fmt.Sprintf("%.1f", te.Mean), fmt.Sprintf("%.1f", te.StdDev), fmt.Sprintf("%.1f", te.Max),
			fmt.Sprintf("%.1f", ee.Mean), fmt.Sprintf("%.1f", ee.StdDev), fmt.Sprintf("%.1f", ee.Max),
			fmt.Sprintf("%.3f", mean(predU)), fmt.Sprintf("%.3f", mean(measU)),
		})
	}
	fmt.Fprintf(os.Stdout, "Validation on %s, class %s\n\n", sys.Name, *class)
	fmt.Fprintln(os.Stdout, textplot.Table(
		[]string{"Prog", "Cfgs", "T mean%", "T std", "T max", "E mean%", "E std", "E max",
			"UCR pred", "UCR meas"}, rows))
	if *showMx {
		fmt.Fprintf(os.Stdout, "\nengine metrics over %d measured runs\n%s", mxRuns, mxAgg)
	}
}

// mean returns the arithmetic mean (0 for an empty slice).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
