// Command hybridsim runs one direct measurement of a hybrid program on the
// simulated cluster and reports time, energy, counters and the mpiP-style
// communication profile — the "measured" side of the paper's validation.
//
// Usage:
//
//	hybridsim -system xeon -program SP -class A -n 4 -c 8 -f 1.8 -seed 1
//	hybridsim -program LB -n 4 -c 4 -timeline -metrics
//	hybridsim -program SP -n 8 -c 8 -trace out.json   # chrome://tracing
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hybridperf"
	"hybridperf/internal/exec"
	"hybridperf/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hybridsim: ")
	var (
		system   = flag.String("system", "xeon", "cluster profile: xeon or arm")
		program  = flag.String("program", "SP", "program: LU, SP, BT, CP or LB")
		class    = flag.String("class", "S", "input class: T, S, A or C")
		n        = flag.Int("n", 2, "number of nodes")
		c        = flag.Int("c", 1, "cores per node")
		fGHz     = flag.Float64("f", 0, "core frequency [GHz]; 0 = fmax")
		seed     = flag.Int64("seed", 1, "simulation seed")
		engine   = flag.String("engine", "", "simulation engine: goroutine or sequential (default $HYBRIDPERF_ENGINE, then goroutine; results are bit-identical)")
		timeline = flag.Bool("timeline", false, "render a per-rank phase Gantt chart")
		traceOut = flag.String("trace", "", "write the phase timeline as a Chrome-trace JSON file")
		showMx   = flag.Bool("metrics", false, "report engine instrumentation counters")
	)
	flag.Parse()

	sys, err := hybridperf.SystemByName(*system)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := hybridperf.ProgramByName(*program)
	if err != nil {
		log.Fatal(err)
	}
	f := *fGHz * 1e9
	if f == 0 {
		f = sys.FMax()
	}
	cfg := hybridperf.Config{Nodes: *n, Cores: *c, Freq: f}
	res, err := exec.Run(exec.Request{
		Prof: sys, Spec: prog, Class: hybridperf.Class(*class), Cfg: cfg,
		Seed: *seed, Engine: *engine, Trace: *timeline || *traceOut != "", Metrics: *showMx,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	fmt.Fprintf(w, "program      %s (%s, %s)\n", prog.Name, prog.Suite, prog.Lang)
	fmt.Fprintf(w, "system       %s\n", sys.Name)
	fmt.Fprintf(w, "config       %v  class %s\n", cfg, *class)
	fmt.Fprintf(w, "time         %.2f s\n", res.Time)
	fmt.Fprintf(w, "energy       %.3f kJ metered (%.3f kJ integrated)\n", res.MeasuredEnergy/1e3, res.Energy.Total()/1e3)
	fmt.Fprintf(w, "  cpu %.3f  mem %.3f  net %.3f  idle %.3f kJ\n",
		res.Energy.CPU/1e3, res.Energy.Mem/1e3, res.Energy.Net/1e3, res.Energy.Idle/1e3)
	t := res.Totals
	fmt.Fprintf(w, "counters     w=%.3g  b=%.3g  m=%.3g cycles, U=%.3f\n",
		t.WorkCycles, t.BStallCycles, t.MemStallCycles, res.Utilization)
	if res.Comm.TotalMsgs > 0 {
		fmt.Fprintf(w, "mpi          eta=%.0f msgs/rank  nu=%.0f B/msg  switch rho=%.2f  mean wait=%.4f s\n",
			res.Comm.MsgsPerRank, res.Comm.BytesPerMsg, res.Comm.SwitchStats.Utilization, res.Comm.SwitchStats.MeanWait)
	}
	// Deterministic by design: no wall-clock here, so two invocations with
	// the same seed stay byte-diffable.
	fmt.Fprintf(w, "engine       %s: %d events on %d procs\n", res.Engine.Engine, res.Engine.Events, res.Engine.Procs)
	if *timeline || *traceOut != "" {
		fmt.Fprintf(w, "measured UCR %.3f (from %d trace events)\n", res.MeasuredUCR, len(res.Trace))
	}
	if *showMx && res.Metrics != nil {
		fmt.Fprintf(w, "\nengine metrics\n%s", res.Metrics.Engine)
	}
	if *timeline {
		fmt.Fprintf(w, "\n%s", trace.Gantt(res.Trace, 100))
	}
	if *traceOut != "" {
		fh, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteChrome(fh, res.Trace); err != nil {
			log.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "wrote %s (%d events; open in chrome://tracing or Perfetto)\n", *traceOut, len(res.Trace))
	}
}
