// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus micro-benchmarks of the substrates and ablation
// benches for the model's design choices (DESIGN.md, Sec. 5).
//
// One benchmark per paper artifact:
//
//	go test -bench 'Fig|Table|WhatIf' -benchtime 1x
//
// The artifact benches run the experiment pipeline in fast mode so a
// full -bench=. pass stays in CI-friendly time; `cmd/experiments` (no
// -fast) regenerates the full-fidelity outputs recorded in
// EXPERIMENTS.md.
package hybridperf

import (
	"context"
	"fmt"
	"math"
	"testing"

	"hybridperf/internal/core"
	"hybridperf/internal/des"
	"hybridperf/internal/exec"
	"hybridperf/internal/experiments"
	"hybridperf/internal/machine"
	"hybridperf/internal/pareto"
	"hybridperf/internal/queueing"
	"hybridperf/internal/workload"
)

// benchArtifact runs one experiment artifact end to end per iteration.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Config{Fast: true, Seed: 7, Workers: 8})
		if _, err := r.ByID(id); err != nil {
			b.Fatal(err)
		}
	}
}

// One bench per paper table and figure (experiment index E1-E11).
func BenchmarkFig3NetworkCharacterization(b *testing.B) { benchArtifact(b, "fig3") }
func BenchmarkTable3Systems(b *testing.B)               { benchArtifact(b, "table3") }
func BenchmarkFig5TimeValidation(b *testing.B)          { benchArtifact(b, "fig5") }
func BenchmarkFig6EnergyValidation(b *testing.B)        { benchArtifact(b, "fig6") }
func BenchmarkFig7ScaleOutLU(b *testing.B)              { benchArtifact(b, "fig7") }
func BenchmarkTable2Validation(b *testing.B)            { benchArtifact(b, "table2") }
func BenchmarkFig8XeonSPPareto(b *testing.B)            { benchArtifact(b, "fig8") }
func BenchmarkFig9ARMCPPareto(b *testing.B)             { benchArtifact(b, "fig9") }
func BenchmarkFig10UCRXeon(b *testing.B)                { benchArtifact(b, "fig10") }
func BenchmarkFig11UCRARM(b *testing.B)                 { benchArtifact(b, "fig11") }
func BenchmarkWhatIfMemoryBandwidth(b *testing.B)       { benchArtifact(b, "whatif") }

// Extension artifacts beyond the paper's evaluation.
func BenchmarkDVFSExtension(b *testing.B)    { benchArtifact(b, "dvfs") }
func BenchmarkTopologyAblation(b *testing.B) { benchArtifact(b, "topology") }

// benchModel characterises once (outside the timed loop) and returns a
// ready model for prediction benches.
func benchModel(b *testing.B, sys *System, prog *Program) *Model {
	b.Helper()
	model, err := Characterize(sys, prog, &CharacterizeOptions{Seed: 1, Workers: 8})
	if err != nil {
		b.Fatal(err)
	}
	return model
}

// BenchmarkPredict measures single-configuration model evaluation: the
// per-point cost of exploring a configuration space.
func BenchmarkPredict(b *testing.B) {
	model := benchModel(b, XeonE5(), SP())
	cfg := Config{Nodes: 8, Cores: 8, Freq: 1.8e9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Predict(cfg, ClassA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreFigure8Space sweeps the paper's 216-configuration Xeon
// SP space and extracts the Pareto frontier.
func BenchmarkExploreFigure8Space(b *testing.B) {
	model := benchModel(b, XeonE5(), SP())
	cfgs := model.Space(pareto.PowersOfTwo(256))
	if len(cfgs) != 216 {
		b.Fatalf("space = %d", len(cfgs))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := model.Explore(cfgs, ClassA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreFullSpace sweeps a dense 8-node x 8-core x all-DVFS
// Xeon space (192 configurations) through the sweep engine, serial vs
// 8-worker, the headline numbers recorded in BENCH_1.json.
func BenchmarkExploreFullSpace(b *testing.B) {
	model := benchModel(b, XeonE5(), SP())
	cfgs := model.Space(pareto.Range(1, 8))
	if len(cfgs) != 192 {
		b.Fatalf("space = %d", len(cfgs))
	}
	S, err := SP().Iterations(ClassA)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pareto.Evaluate(model.Core(), cfgs, S); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pareto.EvaluateParallel(context.Background(), model.Core(), cfgs, S, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulation measures the DES cost of one direct measurement at
// the largest validation configuration.
func BenchmarkSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Simulate(XeonE5(), SP(), ClassS, Config{Nodes: 8, Cores: 8, Freq: 1.8e9}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterize measures the full measurement campaign for one
// program (the dominant cost of applying the approach to a new code).
func BenchmarkCharacterize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Characterize(XeonE5(), LU(), &CharacterizeOptions{Seed: int64(i + 1), Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDESEvents measures raw kernel throughput (events/sec) to size
// simulation budgets.
func BenchmarkDESEvents(b *testing.B) {
	k := des.NewKernel()
	k.Spawn("ticker", func(p *des.Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
		}
	})
	if err := k.Run(math.Inf(1)); err != nil {
		b.Fatal(err)
	}
}

// --- Ablation benches: design choices the model motivates. Each reports
// the resulting mean |error| against direct simulation as a custom metric
// (err%/op), so `-bench Ablation` shows what each modeling term buys.

// ablationGrid is a small but contention-heavy validation grid.
func ablationGrid() []machine.Config {
	return []machine.Config{
		{Nodes: 1, Cores: 8, Freq: 1.8e9},
		{Nodes: 2, Cores: 8, Freq: 1.8e9},
		{Nodes: 4, Cores: 8, Freq: 1.8e9},
		{Nodes: 8, Cores: 8, Freq: 1.8e9},
		{Nodes: 8, Cores: 4, Freq: 1.2e9},
	}
}

// ablationError computes the mean absolute time error of `predict`
// against direct simulation over the ablation grid.
func ablationError(b *testing.B, predict func(machine.Config, int) (float64, error)) float64 {
	b.Helper()
	spec := workload.SP()
	S, _ := spec.Iterations(workload.ClassA)
	var sum float64
	grid := ablationGrid()
	for i, cfg := range grid {
		predT, err := predict(cfg, S)
		if err != nil {
			b.Fatal(err)
		}
		meas, err := exec.Run(exec.Request{
			Prof: machine.XeonE5(), Spec: spec, Class: workload.ClassA, Cfg: cfg, Seed: 1000 + int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		sum += math.Abs(predT-meas.Time) / meas.Time * 100
	}
	return sum / float64(len(grid))
}

// BenchmarkAblationFullModel is the reference point: the complete Eq. (1)
// model.
func BenchmarkAblationFullModel(b *testing.B) {
	model := benchModel(b, XeonE5(), SP())
	var errPct float64
	for i := 0; i < b.N; i++ {
		errPct = ablationError(b, func(cfg machine.Config, S int) (float64, error) {
			p, err := model.Core().Predict(cfg, S)
			return p.T, err
		})
	}
	b.ReportMetric(errPct, "err%/op")
}

// BenchmarkAblationNoContention drops every contention term — the
// Amdahl-style baseline T = (w+b)/(n c f) that prior first-principle
// approaches use. Its error shows why the paper models queueing.
func BenchmarkAblationNoContention(b *testing.B) {
	model := benchModel(b, XeonE5(), SP())
	in := model.Core().Inputs()
	var errPct float64
	for i := 0; i < b.N; i++ {
		errPct = ablationError(b, func(cfg machine.Config, S int) (float64, error) {
			bp, ok := in.Baseline[machine.CF{Cores: cfg.Cores, Freq: cfg.Freq}]
			if !ok {
				return 0, fmt.Errorf("no baseline at %v", cfg)
			}
			scale := float64(S) / float64(in.BaselineIters)
			ncf := float64(cfg.Nodes) * float64(cfg.Cores) * cfg.Freq
			return (bp.W + bp.B) * scale / ncf, nil
		})
	}
	b.ReportMetric(errPct, "err%/op")
}

// BenchmarkAblationNoMemoryTerm keeps network modeling but drops Eq. (7).
func BenchmarkAblationNoMemoryTerm(b *testing.B) {
	model := benchModel(b, XeonE5(), SP())
	var errPct float64
	for i := 0; i < b.N; i++ {
		errPct = ablationError(b, func(cfg machine.Config, S int) (float64, error) {
			p, err := model.Core().Predict(cfg, S)
			return p.T - p.TMem, err
		})
	}
	b.ReportMetric(errPct, "err%/op")
}

// BenchmarkAblationNoNetworkQueueing keeps Eq. (6) service but drops the
// Eq. (5) M/G/1 waiting time.
func BenchmarkAblationNoNetworkQueueing(b *testing.B) {
	model := benchModel(b, XeonE5(), SP())
	var errPct float64
	for i := 0; i < b.N; i++ {
		errPct = ablationError(b, func(cfg machine.Config, S int) (float64, error) {
			p, err := model.Core().Predict(cfg, S)
			return p.T - p.TwNet, err
		})
	}
	b.ReportMetric(errPct, "err%/op")
}

// BenchmarkAblationMD1VsMG1 compares the waiting-time formula choices on
// a mixed message-size workload: with deterministic per-class service the
// mixture still has variance, which M/D/1-on-the-mean underestimates.
func BenchmarkAblationMD1VsMG1(b *testing.B) {
	classes := []core.MsgClass{{Count: 4, Bytes: 64e3}, {Count: 1, Bytes: 4e6}}
	net := core.NetModel{Overhead: 5e-5, Peak: 112.5e6}
	var yMean, y2, n float64
	for _, mc := range classes {
		y := net.ServiceTime(mc.Bytes)
		cnt := float64(mc.Count)
		yMean += cnt * y
		y2 += cnt * y * y
		n += cnt
	}
	yMean /= n
	y2 /= n
	lambda := 0.8 / yMean
	var gap float64
	for i := 0; i < b.N; i++ {
		mg1, err1 := queueing.MG1Wait(lambda, yMean, y2)
		md1, err2 := queueing.MD1Wait(lambda, yMean)
		if err1 != nil || err2 != nil {
			b.Fatal(err1, err2)
		}
		gap = (mg1 - md1) / mg1 * 100
	}
	b.ReportMetric(gap, "md1-underestimate-%")
}
