// Deadline/budget planning: the paper's two scheduling queries. Given the
// CP electronic-structure code on the ARM cluster, find (a) the
// configuration that meets an execution-time deadline with minimum energy
// and (b) the fastest configuration within an energy budget — and compare
// both against the naive "all nodes, all cores, max frequency" choice.
package main

import (
	"fmt"
	"log"

	"hybridperf"
)

func main() {
	log.SetFlags(0)
	sys := hybridperf.ARMCortexA9()
	prog := hybridperf.CP()

	model, err := hybridperf.Characterize(sys, prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	nodes := make([]int, 0, 20)
	for n := 1; n <= 20; n++ {
		nodes = append(nodes, n)
	}
	cfgs := model.Space(nodes)
	points, frontier, err := model.Explore(cfgs, hybridperf.ClassA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s: %d configurations, %d on the Pareto frontier\n\n",
		prog.Name, sys.Name, len(points), len(frontier))

	// The naive choice: everything maxed out.
	naive := hybridperf.Config{Nodes: 20, Cores: sys.CoresPerNode, Freq: sys.FMax()}
	naivePred, err := model.Predict(naive, hybridperf.ClassA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive max config  %v: T=%.0f s  E=%.2f kJ  UCR=%.2f\n\n",
		naive, naivePred.T, naivePred.E/1e3, naivePred.UCR)

	// (a) Minimum energy under a deadline 50% looser than the naive time.
	deadline := naivePred.T * 1.5
	if p, ok, err := model.MinEnergyWithinDeadline(cfgs, hybridperf.ClassA, deadline); err != nil {
		log.Fatal(err)
	} else if ok {
		fmt.Printf("deadline %.0f s  -> %v: T=%.0f s  E=%.2f kJ  (%.0f%% of naive energy)\n",
			deadline, p.Cfg, p.Pred.T, p.Pred.E/1e3, p.Pred.E/naivePred.E*100)
	}

	// (b) Fastest configuration within 60% of the naive energy.
	budget := naivePred.E * 0.6
	if p, ok, err := model.MinTimeWithinBudget(cfgs, hybridperf.ClassA, budget); err != nil {
		log.Fatal(err)
	} else if ok {
		fmt.Printf("budget %.2f kJ -> %v: T=%.0f s  E=%.2f kJ  (%.1fx naive time)\n",
			budget/1e3, p.Cfg, p.Pred.T, p.Pred.E/1e3, p.Pred.T/naivePred.T)
	} else {
		fmt.Printf("budget %.2f kJ -> no configuration fits\n", budget/1e3)
	}

	// The paper's headline observation: relaxing the deadline moves the
	// optimum to fewer nodes AND lower energy.
	fmt.Printf("\ndeadline sweep:\n")
	for _, mult := range []float64{1.0, 1.5, 2.5, 5, 10, 30} {
		d := naivePred.T * mult
		if p, ok, err := model.MinEnergyWithinDeadline(cfgs, hybridperf.ClassA, d); err != nil {
			log.Fatal(err)
		} else if ok {
			fmt.Printf("  deadline %7.0f s -> %-12v E=%7.2f kJ  UCR=%.2f\n", d, p.Cfg, p.Pred.E/1e3, p.Pred.UCR)
		}
	}
}
