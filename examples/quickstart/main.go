// Quickstart: characterise a hybrid program on a cluster, predict the
// time-energy performance of one configuration, and list the time-energy
// Pareto frontier — the end-to-end workflow of the paper's Figure 2.
package main

import (
	"fmt"
	"log"

	"hybridperf"
)

func main() {
	log.SetFlags(0)

	// 1. Pick a system and a program: the Intel Xeon E5 cluster running
	//    the NPB Scalar Penta-diagonal solver.
	sys := hybridperf.XeonE5()
	prog := hybridperf.SP()

	// 2. Characterise: baseline runs on one node across every (c, f)
	//    point, mpiP communication profiling, NetPIPE and power benches.
	//    (All measurements run on the simulated cluster; see DESIGN.md.)
	model, err := hybridperf.Characterize(sys, prog, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Predict one configuration: 4 nodes x 8 cores at 1.8 GHz.
	cfg := hybridperf.Config{Nodes: 4, Cores: 8, Freq: 1.8e9}
	pred, err := model.Predict(cfg, hybridperf.ClassA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s at %v:\n", prog.Name, sys.Name, cfg)
	fmt.Printf("  predicted time   %.1f s  (compute %.1f, memory %.1f, network %.1f)\n",
		pred.T, pred.TCPU, pred.TMem, pred.TwNet+pred.TsNet)
	fmt.Printf("  predicted energy %.2f kJ\n", pred.E/1e3)
	fmt.Printf("  UCR              %.2f\n\n", pred.UCR)

	// 4. Check the prediction against a direct (simulated) measurement.
	meas, err := hybridperf.Simulate(sys, prog, hybridperf.ClassA, cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  measured time    %.1f s, energy %.2f kJ\n\n", meas.Time, meas.MeasuredEnergy/1e3)

	// 5. Explore the configuration space and print the Pareto frontier.
	cfgs := model.Space([]int{1, 2, 4, 8})
	_, frontier, err := model.Explore(cfgs, hybridperf.ClassA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pareto-optimal configurations (%d of %d):\n", len(frontier), len(cfgs))
	for _, p := range frontier {
		fmt.Printf("  %-12v T=%7.1f s  E=%7.2f kJ  UCR=%.2f\n",
			p.Cfg, p.Pred.T, p.Pred.E/1e3, p.Pred.UCR)
	}
}
