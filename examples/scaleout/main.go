// Scale-out prediction (paper Figure 7): the model is characterised once
// on the small class-S input and then predicts the class-C input — 16x
// larger — across cluster configurations, compared here against direct
// simulation. This exercises the paper's claim that resource demands
// scale linearly with input size for scale-out HPC codes.
package main

import (
	"fmt"
	"log"

	"hybridperf"
)

func main() {
	log.SetFlags(0)
	sys := hybridperf.XeonE5()
	prog := hybridperf.LU()

	model, err := hybridperf.Characterize(sys, prog, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LU class C (scale-out) on %s, model vs simulation:\n\n", sys.Name)
	fmt.Printf("%-12s %10s %10s %7s   %10s %10s %7s\n",
		"(n,c)", "T pred[s]", "T meas[s]", "err%", "E pred[kJ]", "E meas[kJ]", "err%")
	var seed int64 = 7
	for _, n := range []int{1, 2, 4, 8} {
		for _, c := range []int{1, 4, 8} {
			cfg := hybridperf.Config{Nodes: n, Cores: c, Freq: sys.FMax()}
			pred, err := model.Predict(cfg, hybridperf.ClassC)
			if err != nil {
				log.Fatal(err)
			}
			meas, err := hybridperf.Simulate(sys, prog, hybridperf.ClassC, cfg, seed)
			if err != nil {
				log.Fatal(err)
			}
			seed++
			terr := pctErr(pred.T, meas.Time)
			eerr := pctErr(pred.E, meas.MeasuredEnergy)
			fmt.Printf("(%d,%d)%7s %10.1f %10.1f %6.1f%%   %10.2f %10.2f %6.1f%%\n",
				n, c, "", pred.T, meas.Time, terr, pred.E/1e3, meas.MeasuredEnergy/1e3, eerr)
		}
	}
	fmt.Println("\nThe characterisation used only single-node class-S runs; every")
	fmt.Println("prediction above extrapolates 16x in input size and up to 8x in nodes.")
}

func pctErr(pred, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	d := (pred - meas) / meas * 100
	if d < 0 {
		return -d
	}
	return d
}
