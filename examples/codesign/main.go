// Hardware-software co-design with UCR (paper Sec. V.B): the Useful
// Computation Ratio pinpoints whether a Pareto-optimal configuration is
// held back by memory or network contention, and what-if bandwidth scaling
// quantifies the benefit of fixing the imbalance — the paper's example is
// doubling memory bandwidth for SP on Xeon (1,8,fmax).
package main

import (
	"fmt"
	"log"

	"hybridperf"
)

func main() {
	log.SetFlags(0)

	// Memory-bandwidth what-if: SP on the Xeon node, all cores at fmax —
	// the configuration the paper optimises from UCR 0.67 to 0.81.
	sys := hybridperf.XeonE5()
	prog := hybridperf.SP()
	model, err := hybridperf.Characterize(sys, prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	cfg := hybridperf.Config{Nodes: 1, Cores: 8, Freq: sys.FMax()}
	fmt.Printf("%s on %s %v — memory bandwidth scaling:\n", prog.Name, sys.Name, cfg)
	base, err := model.Predict(cfg, hybridperf.ClassA)
	if err != nil {
		log.Fatal(err)
	}
	for _, scale := range []float64{1, 1.5, 2, 3, 4} {
		p, err := model.WithMemoryBandwidthScale(scale).Predict(cfg, hybridperf.ClassA)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %.1fx: UCR %.2f  T %6.1f s (%+6.1f)  E %7.0f J (%+6.0f)\n",
			scale, p.UCR, p.T, p.T-base.T, p.E, p.E-base.E)
	}

	// Network-bandwidth what-if: CP on the ARM cluster is allreduce-bound
	// at scale; faster interconnect is the lever there.
	sys2 := hybridperf.ARMCortexA9()
	prog2 := hybridperf.CP()
	model2, err := hybridperf.Characterize(sys2, prog2, nil)
	if err != nil {
		log.Fatal(err)
	}
	cfg2 := hybridperf.Config{Nodes: 8, Cores: 4, Freq: sys2.FMax()}
	fmt.Printf("\n%s on %s %v — network bandwidth scaling:\n", prog2.Name, sys2.Name, cfg2)
	base2, err := model2.Predict(cfg2, hybridperf.ClassA)
	if err != nil {
		log.Fatal(err)
	}
	for _, scale := range []float64{1, 2, 5, 10} {
		p, err := model2.WithNetworkBandwidthScale(scale).Predict(cfg2, hybridperf.ClassA)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.1fx: UCR %.2f  T %7.0f s (%+7.0f)  E %8.0f J (%+8.0f)  net rho %.2f\n",
			scale, p.UCR, p.T, p.T-base2.T, p.E, p.E-base2.E, p.NetRho)
	}
	fmt.Println("\nReading: a low UCR with high net rho points at the interconnect;")
	fmt.Println("a low UCR with large TMem points at the memory system (Sec. V.B).")
}
