// Custom cluster + custom program: how a user applies the approach to
// THEIR system and code rather than the paper's benchmarks. Builds a
// hypothetical 16-node AArch64 server cluster profile and a synthetic
// halo-exchange application, characterises, validates one point against
// direct measurement, and answers the deadline question.
package main

import (
	"fmt"
	"log"

	"hybridperf"
)

func main() {
	log.SetFlags(0)

	// A hypothetical dense AArch64 server cluster: 16 nodes, 16 cores,
	// three DVFS levels, DDR4-class memory, 10 GbE.
	sys := &hybridperf.System{
		Name: "graviton-like", ISA: "aarch64",
		MaxNodes: 16, CoresPerNode: 16,
		Frequencies: []float64{1.0e9, 1.7e9, 2.5e9},

		CyclesPerWork: 1.2,
		BaseStallFrac: 1.0,

		MemBurstBytes:    4 << 20,
		MemBandwidth:     40e9,
		MemCoreBandwidth: 12e9,
		MemTrafficFactor: 1.5,
		MemFixedLat:      1e-6,

		LinkBandwidth:  10e9,
		NetEfficiency:  0.92,
		NetHalfSatB:    16 << 10,
		NetMsgOverhead: 20e-6,

		PSysIdle: 55,
		// ~1 W static plus ~5 W dynamic at the 2.5 GHz reference.
		PCoreAct:   hybridperf.PowerCurve{Static: 1.0, Dyn: 5.0, FRef: 2.5e9, Exp: 2.2},
		StallPower: 0.55,
		PMem:       12,
		PNet:       8,

		MeterNoiseW: 1.5,
		OSJitter:    0.02,
	}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}

	// The user's application: a bandwidth-hungry 3D stencil with a
	// 2-message halo exchange per iteration.
	app := hybridperf.Synthetic(
		"stencil3d",
		12e9, // work units per iteration (whole domain)
		0.7,  // DRAM bytes per work unit
		30,   // baseline iterations (class S)
		2,    // halo messages per rank per iteration
		2e6,  // halo volume at 2 nodes [B]
	)
	if err := app.Validate(); err != nil {
		log.Fatal(err)
	}

	model, err := hybridperf.Characterize(sys, app, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Sanity-check the model against one direct measurement.
	probe := hybridperf.Config{Nodes: 8, Cores: 16, Freq: 2.5e9}
	pred, err := model.Predict(probe, hybridperf.ClassA)
	if err != nil {
		log.Fatal(err)
	}
	meas, err := hybridperf.Simulate(sys, app, hybridperf.ClassA, probe, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stencil3d on %s at %v:\n", sys.Name, probe)
	fmt.Printf("  predicted T=%.1fs E=%.2fkJ UCR=%.2f | measured T=%.1fs E=%.2fkJ\n\n",
		pred.T, pred.E/1e3, pred.UCR, meas.Time, meas.MeasuredEnergy/1e3)

	// The question the paper answers: cheapest configuration meeting a
	// deadline across the full 16x16x3 space.
	nodes := make([]int, 0, 16)
	for n := 1; n <= 16; n++ {
		nodes = append(nodes, n)
	}
	cfgs := model.Space(nodes)
	deadline := pred.T * 2
	best, ok, err := model.MinEnergyWithinDeadline(cfgs, hybridperf.ClassA, deadline)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("deadline %.0fs over %d configurations -> run on %v: T=%.1fs E=%.2fkJ UCR=%.2f\n",
			deadline, len(cfgs), best.Cfg, best.Pred.T, best.Pred.E/1e3, best.Pred.UCR)
	}
}
